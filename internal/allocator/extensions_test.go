package allocator

import (
	"math"
	"math/rand/v2"
	"testing"

	"dynalloc/internal/record"
	"dynalloc/internal/resources"
)

func TestExtendedNames(t *testing.T) {
	if len(ExtendedNames()) != 9 {
		t.Errorf("ExtendedNames() = %v", ExtendedNames())
	}
	for _, n := range []Name{KMeans, Percentile} {
		if _, err := ParseName(string(n)); err != nil {
			t.Errorf("ParseName(%s): %v", n, err)
		}
		if _, err := New(n, Config{Seed: 1}); err != nil {
			t.Errorf("New(%s): %v", n, err)
		}
	}
	// The paper set stays seven.
	if len(Names()) != 7 {
		t.Error("Names() must stay the paper's seven")
	}
}

func TestKMeansFindsWellSeparatedClusters(t *testing.T) {
	km := newKMeans(2)
	for i, v := range []float64{10, 11, 12, 13, 1000, 1001, 1002, 1003} {
		km.Observe(record.Record{TaskID: i + 1, Value: v, Sig: 1, Time: 1})
	}
	reps, weights := km.clusters()
	if len(reps) != 2 {
		t.Fatalf("reps = %v", reps)
	}
	if reps[0] != 13 || reps[1] != 1003 {
		t.Errorf("reps = %v, want [13 1003]", reps)
	}
	if weights[0] != 4 || weights[1] != 4 {
		t.Errorf("weights = %v", weights)
	}
}

func TestKMeansPredictAndRetry(t *testing.T) {
	km := newKMeans(2)
	for i, v := range []float64{10, 11, 12, 13, 1000, 1001, 1002, 1003} {
		km.Observe(record.Record{TaskID: i + 1, Value: v, Sig: 1, Time: 1})
	}
	r := rand.New(rand.NewPCG(1, 1))
	sawLow, sawHigh := false, false
	for i := 0; i < 200; i++ {
		switch km.Predict(r) {
		case 13:
			sawLow = true
		case 1003:
			sawHigh = true
		default:
			t.Fatal("prediction not a cluster representative")
		}
	}
	if !sawLow || !sawHigh {
		t.Error("predictions collapsed to one cluster")
	}
	if got := km.Retry(13, r); got != 1003 {
		t.Errorf("Retry(13) = %v, want 1003", got)
	}
	if got := km.Retry(1003, r); got != 2006 {
		t.Errorf("Retry(1003) = %v, want doubling", got)
	}
	if got := km.Retry(0, r); got <= 0 {
		t.Errorf("Retry(0) = %v", got)
	}
}

func TestKMeansEmptyAndDegenerate(t *testing.T) {
	km := newKMeans(0) // defaults to 3
	if km.k != 3 {
		t.Errorf("default k = %d", km.k)
	}
	r := rand.New(rand.NewPCG(2, 2))
	if km.Predict(r) != 0 {
		t.Error("empty predict should be 0")
	}
	km.Observe(record.Record{TaskID: 1, Value: 42, Sig: 1})
	if got := km.Predict(r); got != 42 {
		t.Errorf("single-record predict = %v", got)
	}
	// Constant values: one effective cluster.
	km2 := newKMeans(3)
	for i := 0; i < 10; i++ {
		km2.Observe(record.Record{TaskID: i + 1, Value: 306, Sig: 1})
	}
	if got := km2.Predict(r); got != 306 {
		t.Errorf("constant predict = %v", got)
	}
}

func TestPercentile(t *testing.T) {
	p := newPercentile(0.9)
	for i := 1; i <= 100; i++ {
		p.Observe(record.Record{TaskID: i, Value: float64(i), Sig: 1, Time: 1})
	}
	r := rand.New(rand.NewPCG(3, 3))
	if got := p.Predict(r); got != 90 {
		t.Errorf("P90 of 1..100 = %v, want 90", got)
	}
	if got := p.Retry(90, r); got != 100 {
		t.Errorf("Retry(90) = %v, want max", got)
	}
	if got := p.Retry(100, r); got != 200 {
		t.Errorf("Retry(100) = %v, want doubling", got)
	}
}

func TestPercentileDefaults(t *testing.T) {
	if newPercentile(0).q != 0.95 || newPercentile(2).q != 0.95 {
		t.Error("default quantile should be 0.95")
	}
	r := rand.New(rand.NewPCG(4, 4))
	if newPercentile(0.5).Predict(r) != 0 {
		t.Error("empty predict should be 0")
	}
}

func TestExtensionsEndToEnd(t *testing.T) {
	for _, n := range []Name{KMeans, Percentile} {
		a := MustNew(n, Config{Seed: 5})
		for i := 1; i <= 40; i++ {
			alloc := a.Allocate("cat", i)
			for _, k := range resources.AllocatedKinds() {
				if alloc.Get(k) <= 0 {
					t.Fatalf("%s: non-positive allocation", n)
				}
			}
			mem := 100 + 50*math.Mod(float64(i), 4)
			a.Observe("cat", i, resources.New(1, mem, 50, 0), 10)
		}
		alloc := a.Allocate("cat", 41)
		if alloc.Get(resources.Memory) > 1024 {
			t.Errorf("%s: steady-state memory %v did not adapt below exploration", n, alloc.Get(resources.Memory))
		}
	}
}
