package allocator

import (
	"errors"
	"math"
	"testing"

	"dynalloc/internal/resources"
)

func TestParseName(t *testing.T) {
	for _, n := range Names() {
		got, err := ParseName(string(n))
		if err != nil || got != n {
			t.Errorf("ParseName(%q) = %v, %v", n, got, err)
		}
	}
	if _, err := ParseName("nope"); !errors.Is(err, ErrUnknownAlgorithm) {
		t.Errorf("ParseName(nope) = %v, want ErrUnknownAlgorithm", err)
	}
	if len(Names()) != 7 {
		t.Errorf("Names() has %d entries, want 7", len(Names()))
	}
	if len(PredictiveNames()) != 6 {
		t.Errorf("PredictiveNames() has %d entries, want 6", len(PredictiveNames()))
	}
}

func TestNewRejectsUnknown(t *testing.T) {
	if _, err := New(Name("bogus"), Config{}); !errors.Is(err, ErrUnknownAlgorithm) {
		t.Error("New with unknown algorithm should return ErrUnknownAlgorithm")
	}
}

func TestDefaultExplorationPerAlgorithm(t *testing.T) {
	// Bucketing family explores conservatively; alternatives explore with a
	// whole machine (Section V-C).
	conservative := map[Name]bool{Greedy: true, Exhaustive: true, Quantized: true}
	for _, n := range Names() {
		a := MustNew(n, Config{Seed: 1})
		alloc := a.Allocate("cat", 1)
		if conservative[n] {
			want := resources.PaperExploration()
			for _, k := range resources.AllocatedKinds() {
				if alloc.Get(k) != want.Get(k) {
					t.Errorf("%s exploratory alloc %s = %v, want %v", n, k, alloc.Get(k), want.Get(k))
				}
			}
		} else {
			want := resources.PaperWorker()
			for _, k := range resources.AllocatedKinds() {
				if alloc.Get(k) != want.Get(k) {
					t.Errorf("%s exploratory alloc %s = %v, want %v (whole machine)", n, k, alloc.Get(k), want.Get(k))
				}
			}
		}
		if alloc.Get(resources.Time) != resources.Unlimited {
			t.Errorf("%s should not constrain time by default", n)
		}
	}
}

func TestExploratoryModeEndsAfterTenRecords(t *testing.T) {
	a := MustNew(Exhaustive, Config{Seed: 2})
	peak := resources.New(0.5, 200, 50, 0).With(resources.Time, 30)
	for i := 1; i <= 10; i++ {
		alloc := a.Allocate("cat", i)
		if alloc.Get(resources.Memory) != 1024 {
			t.Fatalf("task %d: exploratory memory = %v, want 1024", i, alloc.Get(resources.Memory))
		}
		a.Observe("cat", i, peak, 30)
	}
	alloc := a.Allocate("cat", 11)
	if alloc.Get(resources.Memory) != 200 {
		t.Errorf("steady-state memory = %v, want 200 (single bucket rep)", alloc.Get(resources.Memory))
	}
	if alloc.Get(resources.Cores) != 0.5 {
		t.Errorf("steady-state cores = %v, want 0.5", alloc.Get(resources.Cores))
	}
}

func TestRetryEscalatesOnlyExceededKinds(t *testing.T) {
	a := MustNew(Greedy, Config{Seed: 3})
	prev := resources.New(1, 1024, 1024, resources.Unlimited)
	next := a.Retry("cat", 1, prev, []resources.Kind{resources.Memory})
	if next.Get(resources.Memory) != 2048 {
		t.Errorf("exceeded memory = %v, want 2048 (exploratory doubling)", next.Get(resources.Memory))
	}
	if next.Get(resources.Cores) != 1 || next.Get(resources.Disk) != 1024 {
		t.Errorf("unexceeded kinds changed: %v", next)
	}
}

func TestRetryClampedToCapacity(t *testing.T) {
	cap := resources.New(4, 4096, 4096, resources.Unlimited)
	a := MustNew(MaxSeen, Config{Capacity: cap, Seed: 4})
	prev := cap
	next := a.Retry("cat", 1, prev, resources.AllocatedKinds())
	for _, k := range resources.AllocatedKinds() {
		if next.Get(k) > cap.Get(k) {
			t.Errorf("retry exceeded capacity on %s: %v > %v", k, next.Get(k), cap.Get(k))
		}
	}
}

func TestAllocationsNeverExceedCapacity(t *testing.T) {
	cap := resources.New(8, 8192, 8192, resources.Unlimited)
	for _, n := range Names() {
		a := MustNew(n, Config{Capacity: cap, Seed: 5})
		for i := 1; i <= 30; i++ {
			alloc := a.Allocate("cat", i)
			for _, k := range resources.AllocatedKinds() {
				if alloc.Get(k) > cap.Get(k) || alloc.Get(k) <= 0 {
					t.Fatalf("%s task %d: alloc %s = %v out of (0, %v]", n, i, k, alloc.Get(k), cap.Get(k))
				}
			}
			a.Observe("cat", i, resources.New(1, 500, 300, 0), 10)
		}
	}
}

func TestCategoriesAreIndependent(t *testing.T) {
	a := MustNew(MaxSeen, Config{Seed: 6})
	for i := 1; i <= 10; i++ {
		a.Observe("small", i, resources.New(1, 100, 100, 0), 10)
		a.Observe("large", i, resources.New(4, 9000, 100, 0), 10)
	}
	small := a.Allocate("small", 11)
	large := a.Allocate("large", 11)
	if small.Get(resources.Memory) >= large.Get(resources.Memory) {
		t.Errorf("categories leaked: small=%v large=%v",
			small.Get(resources.Memory), large.Get(resources.Memory))
	}
	if a.Records("small") != 10 || a.Records("none") != 0 {
		t.Errorf("Records bookkeeping wrong: %d, %d", a.Records("small"), a.Records("none"))
	}
}

func TestRecordsDeterministicAcrossConstructions(t *testing.T) {
	// Records answers from the canonical first allocated kind, not a map
	// iteration, so repeated constructions with identical observations must
	// agree — including under IgnoreCategories, where every category pools
	// into one state.
	count := func(ignore bool) int {
		a := MustNew(MaxSeen, Config{Seed: 9, IgnoreCategories: ignore})
		for i := 1; i <= 7; i++ {
			a.Observe("cat", i, resources.New(1, 100, 100, 0), 10)
		}
		return a.Records("cat")
	}
	for i := 0; i < 5; i++ {
		if got := count(false); got != 7 {
			t.Fatalf("construction %d: Records = %d, want 7", i, got)
		}
		if got := count(true); got != 7 {
			t.Fatalf("construction %d (pooled): Records = %d, want 7", i, got)
		}
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	run := func() []float64 {
		a := MustNew(Exhaustive, Config{Seed: 42})
		var out []float64
		for i := 1; i <= 40; i++ {
			alloc := a.Allocate("cat", i)
			out = append(out, alloc.Get(resources.Memory))
			mem := 100 + float64(i%7)*300
			a.Observe("cat", i, resources.New(1, mem, 100, 0), 10)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestBucketStatsExposure(t *testing.T) {
	a := MustNew(Greedy, Config{Seed: 7})
	for i := 1; i <= 15; i++ {
		a.Allocate("cat", i)
		a.Observe("cat", i, resources.New(1, 500, 100, 0), 10)
	}
	a.Allocate("cat", 16)
	stats := a.BucketStats()
	if stats == nil || stats["cat"] == nil {
		t.Fatal("BucketStats missing for bucketing allocator")
	}
	if stats["cat"][resources.Memory].Recomputes == 0 {
		t.Error("no recomputes recorded after steady-state predictions")
	}
	if got := MustNew(MaxSeen, Config{Seed: 8}).BucketStats(); got != nil {
		t.Errorf("BucketStats for max-seen = %v, want nil", got)
	}
}

func TestAllocateTimeDimension(t *testing.T) {
	a := MustNew(Exhaustive, Config{AllocateTime: true, Seed: 9})
	for i := 1; i <= 10; i++ {
		a.Observe("cat", i, resources.New(1, 100, 100, 45), 45)
	}
	alloc := a.Allocate("cat", 11)
	if alloc.Get(resources.Time) == resources.Unlimited {
		t.Error("AllocateTime=true should constrain the time dimension after learning")
	}
	if got := alloc.Get(resources.Time); math.Abs(got-45) > 1e-9 {
		t.Errorf("steady-state time allocation = %v, want 45", got)
	}
}

func TestRetryDefensiveMonotonicity(t *testing.T) {
	// Even if an estimator misbehaves (e.g. retry on an unknown category
	// with zero history), the allocator keeps escalation strictly
	// increasing up to the capacity clamp.
	for _, n := range Names() {
		a := MustNew(n, Config{Seed: 10})
		prev := resources.New(1, 100, 100, resources.Unlimited)
		for step := 0; step < 20; step++ {
			next := a.Retry("cat", 1, prev, resources.AllocatedKinds())
			for _, k := range resources.AllocatedKinds() {
				atCap := prev.Get(k) >= a.cfg.Capacity.Get(k)
				if !atCap && next.Get(k) <= prev.Get(k) {
					t.Fatalf("%s: retry did not escalate %s: %v -> %v", n, k, prev.Get(k), next.Get(k))
				}
			}
			prev = next
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew with bad name should panic")
		}
	}()
	MustNew(Name("bad"), Config{})
}

func TestResetCategoryDropsRecords(t *testing.T) {
	a := MustNew(Exhaustive, Config{Seed: 11})
	peak := resources.New(0.5, 200, 50, 0).With(resources.Time, 30)
	for i := 1; i <= 15; i++ {
		a.Observe("hot", i, peak, 30)
		a.Observe("cold", i, peak, 30)
	}
	if got := a.Records("hot"); got != 15 {
		t.Fatalf("records before reset = %d", got)
	}
	a.ResetCategory("hot")
	if got := a.Records("hot"); got != 0 {
		t.Errorf("records after reset = %d, want 0", got)
	}
	// The other category is untouched, and the reset category is back in
	// exploratory mode.
	if got := a.Records("cold"); got != 15 {
		t.Errorf("unrelated category lost records: %d", got)
	}
	if alloc := a.Allocate("hot", 16); alloc.Get(resources.Memory) != 1024 {
		t.Errorf("post-reset allocation = %v, want exploratory 1024 MB", alloc.Get(resources.Memory))
	}
	// Replaying a window of observations rebuilds steady state.
	for i := 6; i <= 15; i++ {
		a.Observe("hot", i, peak, 30)
	}
	if alloc := a.Allocate("hot", 17); alloc.Get(resources.Memory) != 200 {
		t.Errorf("replayed allocation = %v, want 200", alloc.Get(resources.Memory))
	}
	// Resetting an unknown category is a no-op.
	a.ResetCategory("never-seen")
}

func TestResetCategoryIgnoreCategoriesPools(t *testing.T) {
	a := MustNew(Exhaustive, Config{Seed: 12, IgnoreCategories: true})
	peak := resources.New(0.5, 200, 50, 0).With(resources.Time, 30)
	for i := 1; i <= 5; i++ {
		a.Observe("x", i, peak, 30)
	}
	// Pooled state: resetting via any category name clears the shared list.
	a.ResetCategory("y")
	if got := a.Records("x"); got != 0 {
		t.Errorf("pooled records after reset = %d, want 0", got)
	}
}
