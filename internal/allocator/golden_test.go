package allocator

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand/v2"
	"os"
	"testing"

	"dynalloc/internal/resources"
)

// The golden-equivalence layer for the allocator: the estimator hot path
// (record-list rebuilds, bucket recomputes, scratch reuse) may be rebuilt
// freely, but the exact allocation stream every algorithm serves for a fixed
// seed must not move by a bit. Each cell replays a synthetic scheduler loop —
// Allocate, escalate through Retry until the task's true peak fits, Observe —
// across two task categories, and pins an FNV-1a fingerprint over every
// allocation vector the policy returned along the way.
//
// Regenerate after an *intentional* behaviour change with:
//
//	ALLOC_GOLDEN_UPDATE=1 go test ./internal/allocator -run TestGoldenAllocationStreams -v

// allocStreamFingerprint replays the scheduler loop against a fresh
// allocator and hashes every vector it serves.
func allocStreamFingerprint(alg Name, seed uint64) uint64 {
	h := fnv.New64a()
	word := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	hashVec := func(v resources.Vector) {
		for _, x := range v {
			word(math.Float64bits(x))
		}
	}
	a := MustNew(alg, Config{Seed: seed + 100})
	drive := rand.New(rand.NewPCG(seed, 0xA11))
	cats := []string{"preproc", "fit"}
	for task := 1; task <= 250; task++ {
		cat := cats[task%len(cats)]
		// A bimodal peak keeps both escalation and steady-state paths hot.
		peak := resources.New(
			1+3*drive.Float64(),
			200+3000*drive.Float64(),
			100+800*drive.Float64(),
			10+50*drive.Float64(),
		)
		if drive.Float64() < 0.3 {
			peak = peak.Scale(4)
		}
		alloc := a.Allocate(cat, task)
		hashVec(alloc)
		for hop := 0; hop < 64; hop++ {
			var exceeded []resources.Kind
			for _, k := range resources.AllocatedKinds() {
				if peak.Get(k) > alloc.Get(k) {
					exceeded = append(exceeded, k)
				}
			}
			if len(exceeded) == 0 {
				break
			}
			alloc = a.Retry(cat, task, alloc, exceeded)
			hashVec(alloc)
		}
		a.Observe(cat, task, peak, 10+50*drive.Float64())
	}
	return h.Sum64()
}

func TestGoldenAllocationStreams(t *testing.T) {
	update := os.Getenv("ALLOC_GOLDEN_UPDATE") != ""
	i := 0
	for _, alg := range ExtendedNames() {
		for _, seed := range []uint64{1, 2, 3} {
			name := fmt.Sprintf("%s/seed%d", alg, seed)
			got := allocStreamFingerprint(alg, seed)
			if update {
				fmt.Printf("\t0x%x, // %s\n", got, name)
			} else if want := goldenAllocationStreams[i]; got != want {
				t.Errorf("%s: allocation stream fingerprint 0x%x, want 0x%x", name, got, want)
			}
			i++
		}
	}
}

// TestGoldenAllocationStreamsReproducible guards the golden table itself:
// two replays of the same cell must agree before the pinned values mean
// anything.
func TestGoldenAllocationStreamsReproducible(t *testing.T) {
	a := allocStreamFingerprint(Exhaustive, 1)
	b := allocStreamFingerprint(Exhaustive, 1)
	if a != b {
		t.Fatalf("same-seed streams diverged: %x vs %x", a, b)
	}
}

// goldenAllocationStreams is indexed by the cell order of
// TestGoldenAllocationStreams: ExtendedNames() x seeds {1, 2, 3}.
var goldenAllocationStreams = []uint64{
	0x1ae3a9edd5adf495, // whole-machine/seed1
	0x1ae3a9edd5adf495, // whole-machine/seed2
	0x1ae3a9edd5adf495, // whole-machine/seed3
	0xd1e4a4df78c4d51a, // max-seen/seed1
	0x22b1f36f30e05ee3, // max-seen/seed2
	0x23cc5142cdb07c9c, // max-seen/seed3
	0x5d6a4102e93a0726, // min-waste/seed1
	0x435cf868d9dcd95c, // min-waste/seed2
	0x576bc0924b88109a, // min-waste/seed3
	0x750289f66c793b6d, // max-throughput/seed1
	0x20464442b5ae91b2, // max-throughput/seed2
	0x6981381de11aa929, // max-throughput/seed3
	0xc2f6d2b04fec447e, // quantized-bucketing/seed1
	0x7166b6b725269212, // quantized-bucketing/seed2
	0xa0161311be9c5e4,  // quantized-bucketing/seed3
	0x1f17851dbb10db88, // greedy-bucketing/seed1
	0xd186c21bd23f3255, // greedy-bucketing/seed2
	0xea45997e794f59ac, // greedy-bucketing/seed3
	0xdbab50d38a5b9910, // exhaustive-bucketing/seed1
	0x2518dd29e53a9e3e, // exhaustive-bucketing/seed2
	0x87db6b2db461059b, // exhaustive-bucketing/seed3
	0x5ce64f86e8e3ad56, // kmeans-bucketing/seed1
	0xdaea52aaa91dc610, // kmeans-bucketing/seed2
	0xbaca5bfb7edb29a6, // kmeans-bucketing/seed3
	0x9a10029c84568733, // percentile/seed1
	0x5bc9abb88a047512, // percentile/seed2
	0xf720b9d146275fda, // percentile/seed3
}
