// Package allocator implements the adaptive resource allocator of the paper:
// a per-task-category, per-resource-kind prediction layer that the task
// scheduler consults at dispatch time. It provides the seven allocation
// algorithms of the evaluation (Section V-A): Whole Machine, Max Seen,
// Min Waste, Max Throughput, Quantized Bucketing, Greedy Bucketing, and
// Exhaustive Bucketing, all behind one Policy interface, plus the
// exploratory-mode machinery shared by every predictive algorithm.
package allocator

import (
	"math/rand/v2"

	"dynalloc/internal/record"
)

// Estimator predicts scalar allocations for one resource kind within one
// task category. Implementations are not safe for concurrent use; the
// Allocator serializes access.
type Estimator interface {
	// Predict returns the first-attempt allocation for the next task, or 0
	// when the estimator has no basis for a prediction yet (the exploration
	// wrapper supplies the default in that case).
	Predict(r *rand.Rand) float64
	// Retry returns the allocation after the task exhausted an allocation
	// of prev for this kind. Implementations must return a value strictly
	// greater than prev so escalation always terminates.
	Retry(prev float64, r *rand.Rand) float64
	// Observe records the peak consumption of a completed task.
	Observe(rec record.Record)
	// Len reports how many records have been observed.
	Len() int
}

// explorer implements the exploratory mode of Section V-A: until the inner
// estimator has seen threshold records, every first attempt is allocated the
// fixed initial value and failures escalate by doubling. The bucketing
// algorithms explore conservatively (1 core / 1 GB / 1 GB); the alternative
// algorithms explore with a whole machine (Section V-C).
type explorer struct {
	inner     Estimator
	threshold int
	initial   float64
}

func (e *explorer) exploring() bool { return e.inner.Len() < e.threshold }

func (e *explorer) Predict(r *rand.Rand) float64 {
	if e.exploring() {
		return e.initial
	}
	if v := e.inner.Predict(r); v > 0 {
		return v
	}
	return e.initial
}

func (e *explorer) Retry(prev float64, r *rand.Rand) float64 {
	if e.exploring() {
		if prev <= 0 {
			return e.initial
		}
		return prev * 2
	}
	return e.inner.Retry(prev, r)
}

func (e *explorer) Observe(rec record.Record) { e.inner.Observe(rec) }

func (e *explorer) Len() int { return e.inner.Len() }
