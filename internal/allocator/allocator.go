package allocator

import (
	"errors"
	"sync"

	"dynalloc/internal/core"
	"dynalloc/internal/dist"
	"dynalloc/internal/names"
	"dynalloc/internal/record"
	"dynalloc/internal/resources"
	"math/rand/v2"
)

// Name identifies one of the seven allocation algorithms of the evaluation.
type Name string

// The allocation algorithms compared in Section V.
const (
	WholeMachine  Name = "whole-machine"
	MaxSeen       Name = "max-seen"
	MinWaste      Name = "min-waste"
	MaxThroughput Name = "max-throughput"
	Quantized     Name = "quantized-bucketing"
	Greedy        Name = "greedy-bucketing"
	Exhaustive    Name = "exhaustive-bucketing"
)

// Names returns all algorithm names in the order the paper's figures list
// them.
func Names() []Name {
	return []Name{WholeMachine, MaxSeen, MinWaste, MaxThroughput, Quantized, Greedy, Exhaustive}
}

// PredictiveNames returns the algorithm names excluding the Whole Machine
// baseline (the set shown in Figure 6).
func PredictiveNames() []Name {
	return []Name{MaxSeen, MinWaste, MaxThroughput, Quantized, Greedy, Exhaustive}
}

// ErrUnknownAlgorithm is returned (wrapped) when an algorithm name does not
// match any known algorithm. Match it with errors.Is.
var ErrUnknownAlgorithm = errors.New("allocator: unknown algorithm")

// ParseName validates an algorithm name string, following the shared
// Names()/Parse() registry contract: the error wraps ErrUnknownAlgorithm
// and lists the valid names. Both the paper's seven algorithms and the
// extensions are accepted.
func ParseName(s string) (Name, error) {
	return names.Parse(s, ExtendedNames(), func(n Name) string { return string(n) }, ErrUnknownAlgorithm)
}

// Policy is the contract between the task scheduler and a resource
// allocator (Figure 3a): the scheduler asks for an allocation for every
// ready task, reports failed attempts to obtain escalated allocations, and
// feeds back the resource record of every completed task.
//
// Concurrency: a Policy is stateful, so implementations are only required
// to be safe when a single simulation drives them at a time. The parallel
// experiment harness satisfies this by constructing one Policy instance per
// grid cell; *Allocator additionally serializes its methods with a mutex
// and is safe to share across goroutines.
type Policy interface {
	// Allocate returns the first-attempt allocation for a task.
	Allocate(category string, taskID int) resources.Vector
	// Retry returns the allocation after a failed attempt. prev is the
	// allocation that failed and exceeded lists the kinds the task
	// exhausted; unexhausted kinds keep their allocations.
	Retry(category string, taskID int, prev resources.Vector, exceeded []resources.Kind) resources.Vector
	// Observe reports the peak consumption and runtime of a completed task.
	Observe(category string, taskID int, peak resources.Vector, runtime float64)
	// Name identifies the algorithm.
	Name() string
}

// Config tunes an Allocator. The zero value plus Capacity is usable;
// defaults follow Section V-A.
type Config struct {
	// Capacity is the worker shape; predictions are clamped to it. Zero
	// means the paper worker (16 cores / 64 GB / 64 GB).
	Capacity resources.Vector
	// Exploration is the first-attempt allocation used while fewer than
	// ExploreCount records have been observed. Zero means the algorithm's
	// default: 1 core / 1 GB / 1 GB for the bucketing family, a whole
	// machine for the alternatives (Section V-C).
	Exploration resources.Vector
	// ExploreCount is the number of records required to leave exploratory
	// mode. Zero means 10 (Section V-A).
	ExploreCount int
	// AllocateTime, when true, also predicts and enforces the wall-time
	// dimension. The paper's evaluation leaves time unconstrained.
	AllocateTime bool
	// MaxSeenQuantum overrides the Max Seen histogram bucket size per kind.
	// Zero entries default to 1 core / 250 MB / 250 MB / 60 s.
	MaxSeenQuantum resources.Vector
	// QuantizedQuantiles overrides the quantile split points of Quantized
	// Bucketing. Empty means {0.5} (Section V-B).
	QuantizedQuantiles []float64
	// MaxBuckets caps Exhaustive Bucketing's configurations. Zero means 10.
	MaxBuckets int
	// IgnoreCategories pools every task category into a single estimator
	// state. The paper argues against this (Section III-B: different
	// categories don't necessarily correlate and should be allocated
	// independently); the knob exists to quantify that argument.
	IgnoreCategories bool
	// FlatSignificance gives every record significance 1 instead of the
	// paper's task-ID recency weighting (Section V-A), removing the
	// bucketing approach's bias toward recent records. The knob exists to
	// ablate the recency weighting's contribution on phasing workloads.
	FlatSignificance bool
	// KMeansK is the cluster count of the KMeans extension. Zero means 3.
	KMeansK int
	// PercentileQ is the quantile of the Percentile extension, in (0, 1).
	// Zero means 0.95.
	PercentileQ float64
	// Seed drives the allocator's probabilistic bucket choices.
	Seed uint64
}

func (c Config) withDefaults(alg Name) Config {
	if c.Capacity.IsZero() {
		c.Capacity = resources.PaperWorker()
	}
	if c.ExploreCount == 0 {
		c.ExploreCount = 10
	}
	if c.Exploration.IsZero() {
		switch alg {
		case Greedy, Exhaustive, Quantized:
			c.Exploration = resources.PaperExploration()
		default:
			c.Exploration = c.Capacity
		}
	}
	if c.MaxSeenQuantum.IsZero() {
		c.MaxSeenQuantum = resources.New(1, 250, 250, 60)
	}
	if len(c.QuantizedQuantiles) == 0 {
		c.QuantizedQuantiles = []float64{0.5}
	}
	return c
}

// kinds returns the resource kinds this configuration allocates.
func (c Config) kinds() []resources.Kind {
	if c.AllocateTime {
		return resources.Kinds()
	}
	return resources.AllocatedKinds()
}

// Allocator is the adaptive resource allocator of Section IV-D: it maintains
// an independent estimator instance per task category and per resource kind,
// wraps each in the exploratory mode, and serves multi-resource allocations
// clamped to worker capacity. It is safe for concurrent use.
type Allocator struct {
	alg   Name
	cfg   Config
	kinds []resources.Kind // cfg.kinds(), computed once at construction
	mu    sync.Mutex
	rng   *rand.Rand
	cats  map[string]*categoryState
}

type categoryState struct {
	est map[resources.Kind]Estimator
}

// New builds an allocator running the named algorithm.
func New(alg Name, cfg Config) (*Allocator, error) {
	if _, err := ParseName(string(alg)); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults(alg)
	return &Allocator{
		alg:   alg,
		cfg:   cfg,
		kinds: cfg.kinds(),
		rng:   dist.NewRand(cfg.Seed),
		cats:  make(map[string]*categoryState),
	}, nil
}

// MustNew is New for static configurations known to be valid.
func MustNew(alg Name, cfg Config) *Allocator {
	a, err := New(alg, cfg)
	if err != nil {
		panic(err)
	}
	return a
}

// Name implements Policy.
func (a *Allocator) Name() string { return string(a.alg) }

// Algorithm returns the algorithm name.
func (a *Allocator) Algorithm() Name { return a.alg }

func (a *Allocator) category(cat string) *categoryState {
	if a.cfg.IgnoreCategories {
		cat = ""
	}
	cs, ok := a.cats[cat]
	if !ok {
		cs = &categoryState{est: make(map[resources.Kind]Estimator, resources.NumKinds)}
		for _, k := range a.kinds {
			cs.est[k] = a.newEstimator(k)
		}
		a.cats[cat] = cs
	}
	return cs
}

func (a *Allocator) newEstimator(k resources.Kind) Estimator {
	var inner Estimator
	switch a.alg {
	case WholeMachine:
		return &wholeMachine{capacity: a.cfg.Capacity.Get(k)}
	case MaxSeen:
		inner = &maxSeen{quantum: a.cfg.MaxSeenQuantum.Get(k)}
	case MinWaste:
		inner = &minWaste{}
	case MaxThroughput:
		inner = &maxThroughput{}
	case Quantized:
		inner = newQuantized(a.cfg.QuantizedQuantiles)
	case Greedy:
		inner = newBucketing(core.GreedyBucketing{})
	case Exhaustive:
		inner = newBucketing(core.ExhaustiveBucketing{MaxBuckets: a.cfg.MaxBuckets})
	case KMeans:
		inner = newKMeans(a.cfg.KMeansK)
	case Percentile:
		inner = newPercentile(a.cfg.PercentileQ)
	default:
		panic("allocator: unreachable algorithm " + a.alg)
	}
	return &explorer{
		inner:     inner,
		threshold: a.cfg.ExploreCount,
		initial:   a.cfg.Exploration.Get(k),
	}
}

// Allocate implements Policy.
func (a *Allocator) Allocate(category string, taskID int) resources.Vector {
	a.mu.Lock()
	defer a.mu.Unlock()
	cs := a.category(category)
	alloc := resources.New(0, 0, 0, resources.Unlimited)
	// Iterate kinds in canonical order so the shared RNG stream, and hence
	// the whole run, is reproducible from the seed.
	for _, k := range a.kinds {
		v := cs.est[k].Predict(a.rng)
		alloc = alloc.With(k, a.clamp(k, v))
	}
	return alloc
}

// Retry implements Policy: exhausted kinds escalate through the kind's
// estimator; all other kinds keep their previous allocation.
func (a *Allocator) Retry(category string, taskID int, prev resources.Vector, exceeded []resources.Kind) resources.Vector {
	a.mu.Lock()
	defer a.mu.Unlock()
	cs := a.category(category)
	next := prev
	for _, k := range exceeded {
		est, ok := cs.est[k]
		if !ok {
			continue // kind not under allocation (e.g. time when disabled)
		}
		v := est.Retry(prev.Get(k), a.rng)
		if v <= prev.Get(k) {
			v = prev.Get(k) * 2 // defensive: keep escalation strictly increasing
		}
		next = next.With(k, a.clamp(k, v))
	}
	return next
}

// Observe implements Policy. Each resource kind's record carries the task's
// peak consumption for that kind, the task ID as its significance value
// (Section V-A), and the runtime for the time-weighted baselines.
func (a *Allocator) Observe(category string, taskID int, peak resources.Vector, runtime float64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	cs := a.category(category)
	sig := float64(taskID)
	if a.cfg.FlatSignificance {
		sig = 1
	}
	for _, k := range a.kinds {
		cs.est[k].Observe(record.Record{
			TaskID: taskID,
			Value:  peak.Get(k),
			Sig:    sig,
			Time:   runtime,
		})
	}
}

// clamp bounds a predicted value to (0, capacity].
func (a *Allocator) clamp(k resources.Kind, v float64) float64 {
	cap := a.cfg.Capacity.Get(k)
	if v > cap {
		return cap
	}
	if v <= 0 {
		return a.cfg.Exploration.Get(k)
	}
	return v
}

// ResetCategory drops every record observed for a category, returning it to
// the exploratory mode with fresh estimator state. Long-lived callers (the
// allocator service) use it to bound per-category memory: reset, then replay
// a retained window of recent observations, so the record list never grows
// without bound. Unknown categories are a no-op. The shared RNG stream is
// not rewound, so a reset changes subsequent probabilistic bucket choices —
// callers that need bit-reproducible streams must not reset mid-stream.
func (a *Allocator) ResetCategory(category string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.cfg.IgnoreCategories {
		category = ""
	}
	delete(a.cats, category)
}

// Records returns the number of records observed for a category. Every kind
// of a category sees the same observations, so the count is read from the
// first allocated kind in canonical order — not from a map iteration, whose
// order would make the answering estimator (though not the count) random.
func (a *Allocator) Records(category string) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.cfg.IgnoreCategories {
		category = ""
	}
	cs, ok := a.cats[category]
	if !ok {
		return 0
	}
	if est, ok := cs.est[a.kinds[0]]; ok {
		return est.Len()
	}
	return 0
}

// BucketStats returns the bucketing telemetry per (category, kind) when the
// algorithm is Greedy or Exhaustive Bucketing; otherwise it returns nil.
func (a *Allocator) BucketStats() map[string]map[resources.Kind]core.Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	var out map[string]map[resources.Kind]core.Stats
	for cat, cs := range a.cats {
		for k, est := range cs.est {
			ex, ok := est.(*explorer)
			if !ok {
				continue
			}
			b, ok := ex.inner.(*bucketing)
			if !ok {
				continue
			}
			if out == nil {
				out = make(map[string]map[resources.Kind]core.Stats)
			}
			if out[cat] == nil {
				out[cat] = make(map[resources.Kind]core.Stats)
			}
			out[cat][k] = b.Stats()
		}
	}
	return out
}
