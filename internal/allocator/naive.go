package allocator

import (
	"math"
	"math/rand/v2"

	"dynalloc/internal/record"
)

// wholeMachine is the paper's baseline: every task is allocated a full
// worker. It never fails and never learns.
type wholeMachine struct {
	capacity float64
	n        int
}

func (w *wholeMachine) Predict(*rand.Rand) float64 { return w.capacity }

func (w *wholeMachine) Retry(prev float64, _ *rand.Rand) float64 {
	// A task can only exhaust a whole machine if its consumption exceeds
	// worker capacity; doubling keeps the contract that Retry increases.
	if prev <= 0 {
		return w.capacity
	}
	return prev * 2
}

func (w *wholeMachine) Observe(record.Record) { w.n++ }

func (w *wholeMachine) Len() int { return w.n }

// maxSeen allocates the maximum resource value seen so far in the current
// run, rounded up on a histogram with a fixed bucket size (the paper notes a
// bucket size of 250 MB, which turns TopEFT's constant 306 MB disk
// consumption into a 500 MB allocation in the steady state, Section V-C).
type maxSeen struct {
	max     float64
	n       int
	quantum float64
}

func (m *maxSeen) Predict(*rand.Rand) float64 {
	if m.n == 0 {
		return 0
	}
	return quantize(m.max, m.quantum)
}

func (m *maxSeen) Retry(prev float64, _ *rand.Rand) float64 {
	if q := quantize(m.max, m.quantum); q > prev {
		return q
	}
	if prev <= 0 {
		return math.Max(m.quantum, 1)
	}
	return prev * 2
}

func (m *maxSeen) Observe(rec record.Record) {
	m.n++
	if rec.Value > m.max {
		m.max = rec.Value
	}
}

func (m *maxSeen) Len() int { return m.n }

// quantize rounds v up to the next multiple of quantum. A non-positive
// quantum disables rounding.
func quantize(v, quantum float64) float64 {
	if quantum <= 0 {
		return v
	}
	return math.Ceil(v/quantum) * quantum
}
