package allocator

import (
	"math/rand/v2"

	"dynalloc/internal/record"
)

// quantized implements the Quantized Bucketing comparison algorithm of
// Phung et al., "Not All Tasks Are Created Equal" (WORKS 2021), as described
// in Section V: records are split into buckets at fixed quantiles (the 50th
// quantile in the paper's configuration), each bucket's representative is its
// maximum value, a bucket is chosen in proportion to its record mass, and
// failures escalate to higher buckets before falling back to doubling.
type quantized struct {
	recs      record.List
	quantiles []float64 // ascending, exclusive of 0 and 1
}

func newQuantized(quantiles []float64) *quantized {
	if len(quantiles) == 0 {
		quantiles = []float64{0.5}
	}
	return &quantized{quantiles: quantiles}
}

// reps returns the representative value and record-count weight of each
// quantile bucket.
func (q *quantized) reps() (reps []float64, weights []float64) {
	n := q.recs.Len()
	if n == 0 {
		return nil, nil
	}
	prev := -1
	for _, p := range q.quantiles {
		idx := int(p*float64(n)) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= n-1 {
			idx = n - 2
		}
		if idx <= prev {
			continue
		}
		reps = append(reps, q.recs.Value(idx))
		weights = append(weights, float64(idx-prev))
		prev = idx
	}
	reps = append(reps, q.recs.Value(n-1))
	weights = append(weights, float64(n-1-prev))
	return reps, weights
}

func (q *quantized) Predict(r *rand.Rand) float64 {
	reps, weights := q.reps()
	if len(reps) == 0 {
		return 0
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return reps[i]
		}
	}
	return reps[len(reps)-1]
}

func (q *quantized) Retry(prev float64, r *rand.Rand) float64 {
	reps, weights := q.reps()
	total := 0.0
	from := -1
	for i, rep := range reps {
		if rep > prev {
			if from < 0 {
				from = i
			}
			total += weights[i]
		}
	}
	if from < 0 || total <= 0 {
		if prev <= 0 {
			return 1
		}
		return prev * 2
	}
	x := r.Float64() * total
	for i := from; i < len(reps); i++ {
		if reps[i] <= prev {
			continue
		}
		x -= weights[i]
		if x < 0 {
			return reps[i]
		}
	}
	return reps[len(reps)-1]
}

func (q *quantized) Observe(rec record.Record) { q.recs.Add(rec) }

func (q *quantized) Len() int { return q.recs.Len() }
