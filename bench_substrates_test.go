// Benchmarks for the substrate layers: the batch-system pool, the data
// layer, the application layer, the live engine, and placement policies.
package dynalloc_test

import (
	"context"

	"sync"
	"testing"
	"time"

	"dynalloc/internal/allocator"
	"dynalloc/internal/condor"
	"dynalloc/internal/flow"
	"dynalloc/internal/opportunistic"
	"dynalloc/internal/resources"
	"dynalloc/internal/sim"
	"dynalloc/internal/vine"
	"dynalloc/internal/workflow"
	"dynalloc/internal/wq"
)

// A day of batch-system activity for a 125-slot cluster.
func BenchmarkCondorSchedule(b *testing.B) {
	c := condor.DefaultCluster()
	for i := 0; i < b.N; i++ {
		arr := c.Schedule(uint64(i))
		if len(arr) == 0 {
			b.Fatal("empty schedule")
		}
	}
}

// Staging cost of the data layer across a full TopEFT run worth of tasks.
func BenchmarkDataLayer_Staging(b *testing.B) {
	w, err := workflow.ByName("topeft", 0, 1)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		layer := vine.NewLayer()
		vine.Attach(layer, w, uint64(i))
		for _, t := range w.Tasks {
			layer.Stage(t.ID%30, t.ID)
		}
	}
}

// Placement-policy cost and robustness on the discrete-event simulator.
func BenchmarkAblation_Placement(b *testing.B) {
	w, err := workflow.ByName("bimodal", 0, 42)
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range []sim.Placement{sim.FirstFit, sim.WorstFit, sim.BestFit} {
		b.Run(p.String(), func(b *testing.B) {
			var res *sim.Result
			for i := 0; i < b.N; i++ {
				pol := allocator.MustNew(allocator.Exhaustive, allocator.Config{Seed: uint64(i + 1)})
				res, err = sim.Run(sim.Config{
					Workflow: w,
					Policy:   pol,
					Pool:     opportunistic.Static{N: 10},
					Place:    p,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(100*res.Acc.AWE(resources.Memory), "mem-AWE%")
		})
	}
}

// The locality-aware data-layer simulation end to end.
func BenchmarkDataAwareSimulation(b *testing.B) {
	w, err := workflow.ByName("colmena", 0, 42)
	if err != nil {
		b.Fatal(err)
	}
	var res *sim.Result
	for i := 0; i < b.N; i++ {
		layer := vine.NewLayer()
		vine.Attach(layer, w, uint64(i))
		pol := allocator.MustNew(allocator.Greedy, allocator.Config{Seed: uint64(i + 1)})
		res, err = sim.Run(sim.Config{
			Workflow: w,
			Policy:   pol,
			Pool:     opportunistic.Static{N: 20},
			Place:    sim.Locality,
			Data:     layer,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*res.Acc.AWE(resources.Memory), "mem-AWE%")
	b.ReportMetric(res.Makespan, "makespan-s")
}

// Application-layer dispatch overhead: tasks/second through the flow layer
// and a local executor.
func BenchmarkFlow_LocalExecutor(b *testing.B) {
	pol := allocator.MustNew(allocator.Exhaustive, allocator.Config{Seed: 1})
	f := flow.New(&flow.LocalExecutor{Policy: pol})
	task := workflow.Task{
		Category:    "bench",
		Consumption: resources.New(1, 400, 100, 10),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Submit("bench", task).Wait()
	}
}

// Live engine throughput: 200 tasks through a loopback manager with four
// workers per iteration.
func BenchmarkLiveEngine_Loopback(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		w := &workflow.Workflow{Name: "bench"}
		for id := 1; id <= 200; id++ {
			w.Tasks = append(w.Tasks, workflow.Task{
				ID:          id,
				Category:    "bench",
				Consumption: resources.New(0.5, 200+float64(id%7)*50, 50, 2),
			})
		}
		pol := allocator.MustNew(allocator.Exhaustive, allocator.Config{Seed: uint64(i + 1)})
		m := wq.NewManager(pol)
		addr, err := m.Listen("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		var wg sync.WaitGroup
		for j := 0; j < 4; j++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				_ = wq.RunWorker(ctx, addr, wq.WorkerConfig{TimeScale: 1e-5})
			}()
		}
		res, err := m.RunWorkflow(ctx, w)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Outcomes) != 200 {
			b.Fatalf("%d outcomes", len(res.Outcomes))
		}
		m.Close()
		wg.Wait()
		cancel()
	}
}

// Perturbed-rerun stability (the prior-free goal) as a measurable series.
func BenchmarkPerturbedRerun(b *testing.B) {
	base, err := workflow.Synthetic("bimodal", 0, 42)
	if err != nil {
		b.Fatal(err)
	}
	var awe float64
	for i := 0; i < b.N; i++ {
		p := workflow.Perturb(base, workflow.Perturbation{
			Scale:  resources.New(1, 1.3, 1, 1),
			Jitter: 0.05,
		}, uint64(i+1))
		pol := allocator.MustNew(allocator.Greedy, allocator.Config{Seed: uint64(i + 1)})
		res, err := sim.RunSequential(p, pol, sim.RampEarly, 0)
		if err != nil {
			b.Fatal(err)
		}
		awe = res.Acc.AWE(resources.Memory)
	}
	b.ReportMetric(100*awe, "mem-AWE%")
}
