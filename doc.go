// Package dynalloc is a from-scratch Go reproduction of "Adaptive
// Task-Oriented Resource Allocation for Large Dynamic Workflows on
// Opportunistic Resources" (Phung & Thain, IPDPS 2024).
//
// The paper's contribution — the Greedy Bucketing and Exhaustive Bucketing
// online resource-allocation algorithms — lives in internal/core; this root
// package is the curated public API over the whole system:
//
//   - build any of the paper's seven allocation algorithms (NewAllocator),
//   - generate the seven evaluation workloads (GenerateWorkflow),
//   - execute workloads against an allocator on a simulated opportunistic
//     pool (Simulate) or a fast pool-free driver (SimulateSequential),
//   - measure efficiency and waste with the paper's metrics (Result,
//     Summary),
//   - and reproduce every figure and table of the evaluation (the
//     harness-backed Reproduce* functions and cmd/figures).
//
// # Quick start
//
//	w, _ := dynalloc.GenerateWorkflow("topeft", 0, 42)
//	alloc, _ := dynalloc.NewAllocator(dynalloc.ExhaustiveBucketing, dynalloc.AllocatorConfig{Seed: 1})
//	res, _ := dynalloc.Simulate(dynalloc.SimConfig{Workflow: w, Policy: alloc})
//	fmt.Printf("memory efficiency: %.1f%%\n", 100*res.Acc.AWE(dynalloc.Memory))
//
// See examples/ for runnable programs and DESIGN.md for the system
// inventory and the per-experiment index.
package dynalloc
